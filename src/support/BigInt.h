//===- support/BigInt.h - Arbitrary-precision integers ---------*- C++ -*-===//
//
// Part of the IDSVerify project, an open-source reproduction of
// "Predictable Verification using Intrinsic Definitions" (PLDI 2024).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Arbitrary-precision signed integers.
///
/// The simplex core and the rank monadic maps manipulate exact rational
/// numbers whose numerators and denominators can grow without bound during
/// pivoting, so a fixed-width representation is not safe. This is a small,
/// portable implementation with the operations the solver stack needs:
/// ring arithmetic, Euclidean division, gcd, comparisons, hashing, and
/// decimal (de)serialisation.
///
/// Values that fit in int64 (the overwhelming majority of what the solver
/// touches: bounds, pivot coefficients, model values) are stored inline
/// and computed with native machine arithmetic — no limb vector, no heap
/// allocation, so copying solver state (tableau snapshots, bound trails)
/// is trivially cheap. Only on overflow does a value spill to the
/// sign-magnitude base-10^9 limb representation. The representation is
/// canonical: a value is limb-backed iff it does not fit in int64, which
/// keeps equality and hashing cheap.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_SUPPORT_BIGINT_H
#define IDS_SUPPORT_BIGINT_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ids {

/// Arbitrary-precision signed integer (inline int64 fast path, sign +
/// base-10^9 magnitude spill representation).
///
/// Invariants: \c IsBig is set iff the value does not fit in int64; when
/// big, \c Limbs has no trailing zero limb and is non-empty.
class BigInt {
public:
  BigInt() = default;
  BigInt(int64_t Value) : Small(Value) {}

  /// Parses a decimal string with optional leading '-'. Asserts on
  /// malformed input; use only on trusted/validated text.
  static BigInt fromString(const std::string &Text);

  bool isZero() const { return !IsBig && Small == 0; }
  bool isNegative() const { return IsBig ? Negative : Small < 0; }
  bool isOne() const { return !IsBig && Small == 1; }

  /// Returns true and stores the value into \p Out when it fits in int64.
  bool toInt64(int64_t &Out) const {
    if (IsBig)
      return false; // canonical: big values never fit
    Out = Small;
    return true;
  }

  std::string toString() const;

  BigInt operator-() const;
  BigInt operator+(const BigInt &RHS) const;
  BigInt operator-(const BigInt &RHS) const;
  BigInt operator*(const BigInt &RHS) const;

  /// Truncated division (C semantics: rounds toward zero). \p RHS != 0.
  BigInt operator/(const BigInt &RHS) const;
  /// Remainder matching operator/ (same sign as the dividend).
  BigInt operator%(const BigInt &RHS) const;

  BigInt &operator+=(const BigInt &RHS) { return *this = *this + RHS; }
  BigInt &operator-=(const BigInt &RHS) { return *this = *this - RHS; }
  BigInt &operator*=(const BigInt &RHS) { return *this = *this * RHS; }

  bool operator==(const BigInt &RHS) const {
    if (!IsBig && !RHS.IsBig)
      return Small == RHS.Small;
    // Canonical representation: a big value never equals a small one.
    return IsBig == RHS.IsBig && Negative == RHS.Negative &&
           Limbs == RHS.Limbs;
  }
  bool operator!=(const BigInt &RHS) const { return !(*this == RHS); }
  bool operator<(const BigInt &RHS) const { return compare(RHS) < 0; }
  bool operator<=(const BigInt &RHS) const { return compare(RHS) <= 0; }
  bool operator>(const BigInt &RHS) const { return compare(RHS) > 0; }
  bool operator>=(const BigInt &RHS) const { return compare(RHS) >= 0; }

  /// Three-way comparison: negative, zero, or positive.
  int compare(const BigInt &RHS) const;

  BigInt abs() const;

  static BigInt gcd(BigInt A, BigInt B);

  size_t hash() const;

private:
  /// Canonicalising constructor from sign + magnitude limbs: smallifies
  /// when the value fits in int64.
  static BigInt fromMagnitude(bool Neg, std::vector<uint32_t> L);
  /// Canonicalising constructor from sign + uint64 magnitude.
  static BigInt fromUnsignedMagnitude(bool Neg, uint64_t Magnitude);
  /// The value's sign regardless of representation (zero reads false).
  bool negSign() const { return IsBig ? Negative : Small < 0; }
  /// The value's magnitude as base-10^9 limbs (materialised for small).
  std::vector<uint32_t> magnitudeLimbs() const;
  /// Slow-path addition through the limb representation.
  static BigInt addBig(const BigInt &A, const BigInt &B);

  /// Compares magnitudes only.
  static int compareMagnitude(const std::vector<uint32_t> &A,
                              const std::vector<uint32_t> &B);
  static std::vector<uint32_t> addMagnitude(const std::vector<uint32_t> &A,
                                            const std::vector<uint32_t> &B);
  /// Requires |A| >= |B|.
  static std::vector<uint32_t> subMagnitude(const std::vector<uint32_t> &A,
                                            const std::vector<uint32_t> &B);
  static void trim(std::vector<uint32_t> &Limbs);
  /// Magnitude division: returns quotient, stores remainder in \p Rem.
  static std::vector<uint32_t> divModMagnitude(const std::vector<uint32_t> &A,
                                               const std::vector<uint32_t> &B,
                                               std::vector<uint32_t> &Rem);

  int64_t Small = 0;           // value when !IsBig
  bool IsBig = false;
  bool Negative = false;       // sign when IsBig
  std::vector<uint32_t> Limbs; // little-endian, base 10^9; empty when small
};

} // namespace ids

template <> struct std::hash<ids::BigInt> {
  size_t operator()(const ids::BigInt &Value) const { return Value.hash(); }
};

#endif // IDS_SUPPORT_BIGINT_H
