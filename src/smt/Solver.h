//===- smt/Solver.h - CDCL(T) SMT solver -----------------------*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SMT solver facade: decides quantifier-free formulas over the
/// combination of EUF, linear Int/Rat arithmetic and the generalized array
/// fragment — the decidable combination the paper's verification
/// conditions live in (Section 3.7). Architecture:
///
///   formula --(quantifier instantiation; RQ3 mode only)-->
///           --(ite lifting)--> --(eager array reduction)-->
///           --(Tseitin CNF)--> CDCL SAT core
///
/// and on every full propositional assignment, a theory check runs
/// congruence closure and simplex to fixpoint with Nelson-Oppen style
/// equality exchange; conflicts come back as small explanation clauses.
/// Sat answers are validated by evaluating the original formula under the
/// constructed model before being reported.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_SMT_SOLVER_H
#define IDS_SMT_SOLVER_H

#include "smt/ArithSolver.h"
#include "smt/ArrayReduction.h"
#include "smt/CongruenceClosure.h"
#include "smt/Model.h"
#include "smt/SatSolver.h"
#include "smt/Term.h"

#include <memory>

namespace ids {
namespace smt {

/// One-shot SMT solver over a TermManager.
class Solver {
public:
  enum class Result { Sat, Unsat, Unknown };

  struct Options {
    /// Permit Forall terms and run ground instantiation first (the
    /// "Dafny-style" encoding of RQ3). Off by default: QF-mode asserts
    /// quantifier-freeness, mirroring the paper's cross-check.
    bool AllowQuantifiers = false;
    unsigned QuantRounds = 2;
    unsigned MaxInstPerQuant = 2048;
    /// Iterations of model repair (index-collision separation) before
    /// giving up on the query (Result::Unknown).
    unsigned MaxModelRepairIters = 8;
    /// Resource budget: give up (Result::Unknown) after this many theory
    /// checks. 0 means unlimited. Exhaustion is reported explicitly —
    /// bounded resources, not unpredictable divergence.
    uint64_t MaxTheoryChecks = 0;
    /// Wall-clock budget per checkSat call in seconds (0 = unlimited).
    double TimeoutSeconds = 0;
    /// Use the blind (quadratic) array instantiation instead of the
    /// relevancy-driven one. The VC pipeline escalates to this when the
    /// relevancy-driven attempt reports Unknown.
    bool EagerArrayInstantiation = false;
  };

  struct Stats {
    uint64_t TheoryChecks = 0;
    uint64_t SatConflicts = 0;
    uint64_t SatDecisions = 0;
    uint64_t TheoryConflicts = 0;
    uint64_t EqualitiesPropagated = 0;
    uint64_t ModelRepairs = 0;
    /// Queries abandoned (Unknown) because model construction failed with
    /// no sound explanation clause available. Formerly these emitted an
    /// unjustified blocking clause, which could manufacture a wrong Unsat.
    uint64_t ModelGiveUps = 0;
    uint64_t Instantiations = 0;
    unsigned NumAtoms = 0;
    ArrayReductionStats ArrayStats;
  };

  explicit Solver(TermManager &TM, Options O);
  explicit Solver(TermManager &TM) : Solver(TM, Options()) {}
  ~Solver();

  /// Decides satisfiability of \p Formula. One shot per Solver instance.
  Result checkSat(TermRef Formula);

  /// The model after a Sat result.
  const Model &model() const { return CurrentModel; }
  const Stats &stats() const { return St; }

private:
  friend class TheoryCheck;

  TermManager &TM;
  Options Opts;
  Stats St;
  Model CurrentModel;

  // CNF state.
  sat::SatSolver Sat;
  std::unordered_map<TermRef, int> LitCache; // term -> Lit.Code (positive)
  std::vector<TermRef> Atoms;
  std::unordered_map<TermRef, int> AtomIndex;
  std::vector<sat::Var> AtomVar;
  TermRef EvalFormula = nullptr; // pre-reduction formula for the safety net

  sat::Lit litFor(TermRef T);
  void buildCnf(TermRef F);
  bool BudgetExhausted = false;
  double SolveDeadline = 0; // monotonic seconds; 0 = none
};

} // namespace smt
} // namespace ids

#endif // IDS_SMT_SOLVER_H
