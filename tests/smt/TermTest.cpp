//===- tests/smt/TermTest.cpp - Term manager tests -------------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "smt/Term.h"
#include "smt/TermPrinter.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace ids;
using namespace ids::smt;

namespace {
class TermTest : public ::testing::Test {
protected:
  TermManager TM;
};
} // namespace

TEST_F(TermTest, HashConsingSharesStructure) {
  TermRef X = TM.mkVar("x", TM.intSort());
  TermRef Y = TM.mkVar("y", TM.intSort());
  EXPECT_EQ(TM.mkAdd(X, Y), TM.mkAdd(Y, X)); // canonical ordering
  EXPECT_EQ(TM.mkEq(X, Y), TM.mkEq(Y, X));
  EXPECT_EQ(TM.mkVar("x", TM.intSort()), X);
}

TEST_F(TermTest, BooleanSimplification) {
  TermRef P = TM.mkVar("p", TM.boolSort());
  EXPECT_EQ(TM.mkNot(TM.mkNot(P)), P);
  EXPECT_EQ(TM.mkAnd(P, TM.mkTrue()), P);
  EXPECT_EQ(TM.mkAnd(P, TM.mkFalse()), TM.mkFalse());
  EXPECT_EQ(TM.mkOr(P, TM.mkTrue()), TM.mkTrue());
  EXPECT_EQ(TM.mkOr(P, P), P);
  EXPECT_EQ(TM.mkImplies(TM.mkFalse(), P), TM.mkTrue());
  EXPECT_EQ(TM.mkIte(TM.mkTrue(), P, TM.mkFalse()), P);
}

TEST_F(TermTest, AndFlattening) {
  TermRef P = TM.mkVar("p", TM.boolSort());
  TermRef Q = TM.mkVar("q", TM.boolSort());
  TermRef R = TM.mkVar("r", TM.boolSort());
  TermRef Nested = TM.mkAnd(P, TM.mkAnd(Q, R));
  EXPECT_EQ(Nested->getKind(), TermKind::And);
  EXPECT_EQ(Nested->getNumArgs(), 3u);
}

TEST_F(TermTest, ArithmeticFolding) {
  TermRef X = TM.mkVar("x", TM.intSort());
  EXPECT_EQ(TM.mkAdd(TM.mkIntConst(2), TM.mkIntConst(3)), TM.mkIntConst(5));
  EXPECT_EQ(TM.mkMulConst(Rational(0), X), TM.mkIntConst(0));
  EXPECT_EQ(TM.mkMulConst(Rational(1), X), X);
  EXPECT_EQ(TM.mkSub(X, X), TM.mkIntConst(0));
  EXPECT_EQ(TM.mkLe(TM.mkIntConst(1), TM.mkIntConst(2)), TM.mkTrue());
  EXPECT_EQ(TM.mkLt(TM.mkIntConst(2), TM.mkIntConst(2)), TM.mkFalse());
  // -( -x ) == x through nested Mul folding
  EXPECT_EQ(TM.mkNeg(TM.mkNeg(X)), X);
}

TEST_F(TermTest, EqualityFolding) {
  TermRef X = TM.mkVar("x", TM.intSort());
  EXPECT_EQ(TM.mkEq(X, X), TM.mkTrue());
  EXPECT_EQ(TM.mkEq(TM.mkIntConst(1), TM.mkIntConst(2)), TM.mkFalse());
  TermRef P = TM.mkVar("p", TM.boolSort());
  EXPECT_EQ(TM.mkEq(P, TM.mkTrue()), P);
  EXPECT_EQ(TM.mkEq(P, TM.mkFalse()), TM.mkNot(P));
}

TEST_F(TermTest, SelectOverStore) {
  const Sort *ArrS = TM.getArraySort(TM.locSort(), TM.intSort());
  TermRef M = TM.mkVar("M", ArrS);
  TermRef X = TM.mkVar("x", TM.locSort());
  TermRef V = TM.mkIntConst(7);
  EXPECT_EQ(TM.mkSelect(TM.mkStore(M, X, V), X), V);
  EXPECT_EQ(TM.mkSelect(TM.mkConstArray(ArrS, V), X), V);
  // store-over-store on the same index collapses
  TermRef S2 = TM.mkStore(TM.mkStore(M, X, V), X, TM.mkIntConst(9));
  EXPECT_EQ(S2->getArg(0), M);
}

TEST_F(TermTest, SetSugar) {
  TermRef X = TM.mkVar("x", TM.locSort());
  TermRef S = TM.mkSingleton(X);
  EXPECT_EQ(TM.mkMember(X, S), TM.mkTrue());
  TermRef Empty = TM.mkEmptySet(TM.locSort());
  EXPECT_EQ(TM.mkSetUnion(S, Empty), S);
  EXPECT_EQ(TM.mkSetIntersect(S, Empty), Empty);
  EXPECT_EQ(TM.mkSetMinus(Empty, S), Empty);
}

TEST_F(TermTest, Substitution) {
  TermRef X = TM.mkVar("x", TM.intSort());
  TermRef Y = TM.mkVar("y", TM.intSort());
  TermRef F = TM.mkLe(TM.mkAdd(X, TM.mkIntConst(1)), Y);
  std::unordered_map<TermRef, TermRef> Map = {{X, TM.mkIntConst(4)}};
  TermRef G = TM.substitute(F, Map);
  EXPECT_EQ(G, TM.mkLe(TM.mkIntConst(5), Y));
}

TEST_F(TermTest, QuantifierDetection) {
  TermRef X = TM.mkVar("x", TM.locSort());
  TermRef Body = TM.mkEq(X, TM.mkNil());
  TermRef Q = TM.mkForall({X}, Body);
  EXPECT_TRUE(TM.containsQuantifier(Q));
  EXPECT_FALSE(TM.containsQuantifier(Body));
  EXPECT_TRUE(TM.containsQuantifier(TM.mkAnd(Q, Body)));
}

TEST_F(TermTest, PrinterRoundTripish) {
  TermRef X = TM.mkVar("x", TM.intSort());
  TermRef F = TM.mkLt(X, TM.mkIntConst(3));
  EXPECT_EQ(printTerm(F), "(< x 3)");
  std::string Query = printQuery(F);
  EXPECT_NE(Query.find("(declare-const x Int)"), std::string::npos);
  EXPECT_NE(Query.find("(check-sat)"), std::string::npos);
}

TEST_F(TermTest, FreshVarsAreFresh) {
  TermRef A = TM.mkFreshVar("tmp", TM.intSort());
  TermRef B = TM.mkFreshVar("tmp", TM.intSort());
  EXPECT_NE(A, B);
  EXPECT_NE(A->getName(), B->getName());
}

// ---------------------------------------------------------------------------
// Snapshot overlays: a frozen base shared read-only by worker-side
// overlay managers (the --jobs term-sharing machinery).

TEST_F(TermTest, SnapshotSharesBaseTerms) {
  TermRef X = TM.mkVar("x", TM.intSort());
  TermRef F = TM.mkLe(TM.mkAdd(X, TM.mkIntConst(1)), TM.mkIntConst(5));
  TM.freeze();
  {
    TermManager Overlay(TM, TermManager::Snapshot{});
    // Shared singletons and sorts are the very same pointers.
    EXPECT_EQ(Overlay.mkTrue(), TM.mkTrue());
    EXPECT_EQ(Overlay.mkNil(), TM.mkNil());
    EXPECT_EQ(Overlay.intSort(), TM.intSort());
    // Rebuilding a base term through the overlay's smart constructors
    // hits the base table: identical pointer, no copy.
    TermRef OX = Overlay.mkVar("x", Overlay.intSort());
    EXPECT_EQ(OX, X);
    TermRef OF =
        Overlay.mkLe(Overlay.mkAdd(OX, Overlay.mkIntConst(1)),
                     Overlay.mkIntConst(5));
    EXPECT_EQ(OF, F);
    EXPECT_EQ(Overlay.numTerms(), TM.numTerms());
  }
  TM.thaw();
}

TEST_F(TermTest, SnapshotDeltaStaysPrivate) {
  TermRef X = TM.mkVar("x", TM.intSort());
  unsigned BaseCount = TM.numTerms();
  TM.freeze();
  {
    TermManager Overlay(TM, TermManager::Snapshot{});
    TermRef Y = Overlay.mkVar("y", Overlay.intSort());
    TermRef G = Overlay.mkLt(X, Y);
    // Overlay ids continue past the base's id space.
    EXPECT_GE(Y->getId(), BaseCount);
    EXPECT_GE(G->getId(), BaseCount);
    // Mixing base and overlay terms in one node is fine.
    EXPECT_EQ(G->getArg(0), X);
    // The base is untouched.
    EXPECT_EQ(TM.numTerms(), BaseCount);
  }
  TM.thaw();
  // After thawing, the base can intern again and never saw the delta.
  EXPECT_EQ(TM.numTerms(), BaseCount);
  TermRef Z = TM.mkVar("z", TM.intSort());
  EXPECT_EQ(Z->getName(), "z");
}

TEST_F(TermTest, SnapshotSharesSortsAndDecls) {
  const Sort *Elem = TM.getUninterpretedSort("Elem");
  const Sort *SetSort = TM.getArraySort(Elem, TM.boolSort());
  const FuncDecl *D = TM.getFuncDecl("key", {TM.locSort()}, TM.intSort());
  TM.freeze();
  {
    TermManager Overlay(TM, TermManager::Snapshot{});
    EXPECT_EQ(Overlay.getUninterpretedSort("Elem"), Elem);
    EXPECT_EQ(Overlay.getArraySort(Elem, Overlay.boolSort()), SetSort);
    EXPECT_EQ(Overlay.getFuncDecl("key", {Overlay.locSort()},
                                  Overlay.intSort()),
              D);
    // An overlay-new sort composes with shared ones.
    const Sort *Fresh = Overlay.getUninterpretedSort("OverlayOnly");
    EXPECT_NE(Fresh, nullptr);
    EXPECT_NE(Overlay.getArraySort(Fresh, Overlay.boolSort()), SetSort);
  }
  TM.thaw();
}

TEST_F(TermTest, SnapshotFreshVarsAvoidBaseNames) {
  TermRef BaseFresh = TM.mkFreshVar("tmp", TM.intSort());
  TM.freeze();
  {
    TermManager Overlay(TM, TermManager::Snapshot{});
    TermRef A = Overlay.mkFreshVar("tmp", Overlay.intSort());
    TermRef B = Overlay.mkFreshVar("tmp", Overlay.intSort());
    EXPECT_NE(A->getName(), BaseFresh->getName());
    EXPECT_NE(A->getName(), B->getName());
  }
  TM.thaw();
}

TEST_F(TermTest, SnapshotStructHashesMatchImport) {
  // The overlay view and a full import into a fresh manager must agree
  // on the 128-bit structural hash — QueryCache keys are view-invariant.
  TermRef X = TM.mkVar("x", TM.locSort());
  TermRef S = TM.mkSetInsert(TM.mkEmptySet(TM.locSort()), X);
  TermRef F = TM.mkAnd(TM.mkMember(X, S), TM.mkNot(TM.mkEq(X, TM.mkNil())));
  TM.freeze();
  TermManager Overlay(TM, TermManager::Snapshot{});
  TermRef G = Overlay.mkOr(F, Overlay.mkEq(X, Overlay.mkNil()));
  TermManager Fresh;
  TermRef Imported = Fresh.import(G);
  EXPECT_EQ(G->getStructHashLo(), Imported->getStructHashLo());
  EXPECT_EQ(G->getStructHashHi(), Imported->getStructHashHi());
  TM.thaw();
}

TEST_F(TermTest, ConcurrentOverlaysShareFrozenBase) {
  // Many threads, each with a private overlay, hammer the same frozen
  // base: every rebuild of a base term must resolve to the base pointer.
  TermRef X = TM.mkVar("x", TM.intSort());
  TermRef F = TM.mkLe(X, TM.mkIntConst(10));
  TM.freeze();
  std::vector<std::thread> Threads;
  std::atomic<int> Failures{0};
  for (int T = 0; T < 8; ++T)
    Threads.emplace_back([&] {
      TermManager Overlay(TM, TermManager::Snapshot{});
      for (int I = 0; I < 200; ++I) {
        TermRef OX = Overlay.mkVar("x", Overlay.intSort());
        TermRef OF = Overlay.mkLe(OX, Overlay.mkIntConst(10));
        if (OX != X || OF != F)
          Failures.fetch_add(1);
        // Private delta per iteration, mixing shared structure.
        TermRef D = Overlay.mkAdd(OX, Overlay.mkIntConst(I));
        if (D->getSort() != Overlay.intSort())
          Failures.fetch_add(1);
      }
    });
  for (std::thread &Th : Threads)
    Th.join();
  TM.thaw();
  EXPECT_EQ(Failures.load(), 0);
}
