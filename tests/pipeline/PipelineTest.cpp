//===- tests/pipeline/PipelineTest.cpp - Pipeline facade tests -------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the pipeline facade: term import across managers, the
/// structural query cache (intra-batch dedup and cross-call sharing),
/// parallel dispatch determinism (--jobs), legacy VC split grouping,
/// and verdict reporting.
///
//===----------------------------------------------------------------------===//

#include "pipeline/Pipeline.h"
#include "smt/Solver.h"

#include <gtest/gtest.h>

using namespace ids;
using namespace ids::pipeline;
using namespace ids::smt;

namespace {

vcgen::Obligation obligation(TermRef Guard, TermRef Claim,
                             const char *Desc) {
  vcgen::Obligation O;
  O.Guard = Guard;
  O.Claim = Claim;
  O.Description = Desc;
  return O;
}

TEST(TermImportTest, RoundTripsAcrossManagers) {
  TermManager Src;
  TermRef X = Src.mkVar("x", Src.intSort());
  TermRef A = Src.mkVar("a", Src.getArraySort(Src.intSort(), Src.intSort()));
  const FuncDecl *F = Src.getFuncDecl("f", {Src.locSort()}, Src.intSort());
  TermRef N = Src.mkApply(F, {Src.mkNil()});
  TermRef Formula = Src.mkAnd(
      {Src.mkLe(Src.mkSelect(Src.mkStore(A, X, N), Src.mkIntConst(3)), X),
       Src.mkEq(X, Src.mkAdd(N, Src.mkIntConst(1)))});

  TermManager Dst;
  TermRef Imported = Dst.import(Formula);
  ASSERT_NE(Imported, nullptr);
  // Import is deterministic: two fresh managers agree term for term
  // (this is what makes cached outcomes valid for every later import of
  // a structurally identical query).
  TermManager Dst2;
  EXPECT_EQ(QueryCache::keyFor(Imported),
            QueryCache::keyFor(Dst2.import(Formula)));
  // Importing twice is stable (memoised).
  EXPECT_EQ(Dst.import(Formula), Imported);
  // And the import is solvable in its new home.
  Solver S(Dst);
  EXPECT_EQ(S.checkSat(Imported), Solver::Result::Sat);
}

TEST(QueryCacheTest, KeyDistinguishesStructure) {
  TermManager TM;
  TermRef X = TM.mkVar("x", TM.intSort());
  TermRef Y = TM.mkVar("y", TM.intSort());
  EXPECT_NE(QueryCache::keyFor(TM.mkLe(X, Y)),
            QueryCache::keyFor(TM.mkLe(Y, X)));
  EXPECT_NE(QueryCache::keyFor(X), QueryCache::keyFor(Y));
  EXPECT_EQ(QueryCache::keyFor(TM.mkLe(X, Y)),
            QueryCache::keyFor(TM.mkLe(X, Y)));
}

TEST(QueryCacheTest, IdenticalObligationsSolveOnce) {
  TermManager TM;
  TermRef X = TM.mkVar("x", TM.intSort());
  TermRef Y = TM.mkVar("y", TM.intSort());
  TermRef Guard = TM.mkLe(X, Y);
  TermRef Claim = TM.mkLe(X, TM.mkAdd(Y, TM.mkIntConst(1)));
  std::vector<vcgen::Obligation> Obls = {obligation(Guard, Claim, "one"),
                                         obligation(Guard, Claim, "two")};
  Options Opts;
  Opts.Simplify = false; // keep both obligations solver-bound
  QueryCache Cache;
  Result R = solveObligations(TM, Obls, Opts, &Cache);
  EXPECT_EQ(R.V, Verdict::Proved);
  EXPECT_EQ(R.St.Queries, 1u);
  EXPECT_EQ(R.St.CacheHits, 1u);
}

TEST(QueryCacheTest, SharedAcrossCallsAndManagers) {
  Options Opts;
  Opts.Simplify = false;
  QueryCache Cache;
  Stats FirstStats;
  // The same structural obligation built in two independent managers
  // (as different procedures would) must hit across calls.
  for (int Call = 0; Call < 2; ++Call) {
    TermManager TM;
    TermRef X = TM.mkVar("x", TM.intSort());
    TermRef Guard = TM.mkLe(X, TM.mkIntConst(7));
    TermRef Claim = TM.mkLe(X, TM.mkIntConst(9));
    std::vector<vcgen::Obligation> Obls = {
        obligation(Guard, Claim, "cross-proc")};
    Result R = solveObligations(TM, Obls, Opts, &Cache);
    EXPECT_EQ(R.V, Verdict::Proved);
    if (Call == 0) {
      EXPECT_EQ(R.St.Queries, 1u);
      EXPECT_EQ(R.St.CacheHits, 0u);
    } else {
      EXPECT_EQ(R.St.Queries, 0u);
      EXPECT_EQ(R.St.CacheHits, 1u);
    }
  }
  EXPECT_EQ(Cache.size(), 1u);
}

TEST(QueryCacheTest, DisabledCacheRunsEveryQuery) {
  TermManager TM;
  TermRef X = TM.mkVar("x", TM.intSort());
  TermRef Guard = TM.mkLe(X, TM.mkIntConst(7));
  TermRef Claim = TM.mkLe(X, TM.mkIntConst(9));
  std::vector<vcgen::Obligation> Obls = {obligation(Guard, Claim, "a"),
                                         obligation(Guard, Claim, "b")};
  Options Opts;
  Opts.Simplify = false;
  Opts.Cache = false;
  Result R = solveObligations(TM, Obls, Opts, nullptr);
  EXPECT_EQ(R.V, Verdict::Proved);
  EXPECT_EQ(R.St.Queries, 2u);
  EXPECT_EQ(R.St.CacheHits, 0u);
}

TEST(QueryCacheTest, UnknownOutcomesAreNotCached) {
  // Regression: BatchSolver used to insert Unknown outcomes into the
  // cache unconditionally, so an Unknown earned under a starved budget
  // would answer a later, unbudgeted solve of the same query — verdict
  // weakening in-process, outright poison once the cache persists.
  // Solve a hard query under --budget 1, then unbudgeted with the SAME
  // cache: the second solve must be a real solve (no hit) and must prove.
  // A pure conjunction is refuted within ONE full-model theory check
  // (conflict clause at level 0), so the query needs disjunctive case
  // splits: each x_i in {1,2}, sum forced out of range. Every
  // propositional model is a distinct arithmetic conflict, so the search
  // needs several theory checks and budget 1 is deterministically
  // exhausted.
  TermManager TM;
  std::vector<TermRef> Conjs;
  std::vector<TermRef> Sum;
  for (int I = 0; I < 4; ++I) {
    TermRef X = TM.mkVar("x" + std::to_string(I), TM.intSort());
    Conjs.push_back(TM.mkOr(TM.mkEq(X, TM.mkIntConst(1)),
                            TM.mkEq(X, TM.mkIntConst(2))));
    Sum.push_back(X);
  }
  Conjs.push_back(TM.mkEq(TM.mkAdd(Sum), TM.mkIntConst(100)));
  std::vector<vcgen::Obligation> Obls = {
      obligation(TM.mkAnd(Conjs), TM.mkFalse(), "range-sum")};

  Options Starved;
  Starved.Simplify = false;
  Starved.Slice = false;
  Starved.MaxTheoryChecks = 1;
  QueryCache Cache;
  Result R1 = solveObligations(TM, Obls, Starved, &Cache);
  ASSERT_EQ(R1.V, Verdict::Unknown)
      << "corpus query was decided within one theory check; strengthen it";
  // The poisoned entry the old code inserted:
  EXPECT_EQ(Cache.size(), 0u);

  Options Full;
  Full.Simplify = false;
  Full.Slice = false;
  Result R2 = solveObligations(TM, Obls, Full, &Cache);
  EXPECT_EQ(R2.V, Verdict::Proved); // 2v+2w is even, every conjunct odd
  EXPECT_EQ(R2.St.CacheHits, 0u);
  EXPECT_EQ(R2.St.Queries, 1u);
  // The definitive outcome IS cached for the next round.
  EXPECT_EQ(Cache.size(), 1u);
  Result R3 = solveObligations(TM, Obls, Full, &Cache);
  EXPECT_EQ(R3.V, Verdict::Proved);
  EXPECT_EQ(R3.St.CacheHits, 1u);
  EXPECT_EQ(R3.St.Queries, 0u);
}

class PipelineVerdictTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(PipelineVerdictTest, JobsAndSplitsPreserveVerdicts) {
  // A mixed batch: provable, failing, and trivially provable
  // obligations. Every (jobs, splits) combination must agree.
  TermManager TM;
  TermRef X = TM.mkVar("x", TM.intSort());
  TermRef Y = TM.mkVar("y", TM.intSort());
  TermRef Z = TM.mkVar("z", TM.intSort());
  std::vector<vcgen::Obligation> Obls = {
      obligation(TM.mkAnd(TM.mkLe(X, Y), TM.mkLe(Y, Z)), TM.mkLe(X, Z),
                 "transitivity"),
      obligation(TM.mkLe(X, TM.mkIntConst(3)), TM.mkLe(X, TM.mkIntConst(5)),
                 "weaken"),
      obligation(TM.mkLe(X, Y), TM.mkEq(X, Y), "wrong-eq"),
      obligation(TM.mkTrue(), TM.mkEq(X, X), "reflexive")};
  for (unsigned Splits : {0u, 1u, 2u, 8u}) {
    Options Opts;
    Opts.Jobs = GetParam();
    Opts.VcSplits = Splits;
    Result R = solveObligations(TM, Obls, Opts, nullptr);
    EXPECT_EQ(R.V, Verdict::Failed)
        << "jobs=" << GetParam() << " splits=" << Splits;
    EXPECT_NE(R.FailedDescription.find("wrong-eq"), std::string::npos)
        << "jobs=" << GetParam() << " splits=" << Splits;
    EXPECT_FALSE(R.Counterexample.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Jobs, PipelineVerdictTest,
                         ::testing::Values(1u, 2u, 4u));

TEST(PipelineTest, EmptyObligationsProve) {
  TermManager TM;
  Options Opts;
  Result R = solveObligations(TM, {}, Opts, nullptr);
  EXPECT_EQ(R.V, Verdict::Proved);
}

TEST(PipelineTest, UnknownOnBudgetExhaustion) {
  // A genuinely hard integer query under a tiny theory-check budget.
  TermManager TM;
  std::vector<TermRef> Conjs;
  TermRef Prev = nullptr;
  for (int I = 0; I < 6; ++I) {
    TermRef V = TM.mkVar("v" + std::to_string(I), TM.intSort());
    TermRef W = TM.mkVar("w" + std::to_string(I), TM.intSort());
    Conjs.push_back(TM.mkEq(TM.mkAdd(TM.mkMulConst(Rational(2), V),
                                     TM.mkMulConst(Rational(2), W)),
                            TM.mkIntConst(2 * I + 1)));
    Prev = V;
  }
  (void)Prev;
  std::vector<vcgen::Obligation> Obls = {
      obligation(TM.mkAnd(Conjs), TM.mkFalse(), "parity")};
  Options Opts;
  Opts.Simplify = false;
  Opts.Slice = false;
  Opts.MaxTheoryChecks = 1;
  Result R = solveObligations(TM, Obls, Opts, nullptr);
  // Either the solver decides it within one theory check (it is Unsat:
  // 2v+2w is even) or reports Unknown; it must never claim Failed.
  EXPECT_NE(R.V, Verdict::Failed);
}

TEST(PipelineTest, IncrementalBatchingPreservesVerdicts) {
  // Obligations sharing a long guard prefix (the shape prefix batching
  // targets): incremental and one-shot modes must agree, including on a
  // failing member whose batch Sat is re-confirmed one-shot.
  TermManager TM;
  TermRef X = TM.mkVar("x", TM.intSort());
  TermRef Y = TM.mkVar("y", TM.intSort());
  TermRef Z = TM.mkVar("z", TM.intSort());
  TermRef A =
      TM.mkVar("a", TM.getArraySort(TM.intSort(), TM.intSort()));
  TermRef Prefix = TM.mkAnd(
      {TM.mkLe(X, Y), TM.mkLe(Y, Z),
       TM.mkEq(TM.mkSelect(A, X), TM.mkIntConst(1)),
       TM.mkEq(TM.mkSelect(A, Z), TM.mkIntConst(9))});
  std::vector<vcgen::Obligation> Obls = {
      obligation(Prefix, TM.mkLe(X, Z), "transitive"),
      obligation(Prefix, TM.mkLe(TM.mkSelect(A, X), TM.mkIntConst(5)),
                 "read-one"),
      obligation(Prefix, TM.mkEq(X, Z), "wrong-eq"),
      obligation(Prefix, TM.mkLe(TM.mkIntConst(9), TM.mkSelect(A, Z)),
                 "read-two")};
  for (bool Incremental : {true, false}) {
    Options Opts;
    Opts.Simplify = false; // keep every obligation solver-bound
    Opts.Incremental = Incremental;
    Result R = solveObligations(TM, Obls, Opts, nullptr);
    EXPECT_EQ(R.V, Verdict::Failed) << "incremental=" << Incremental;
    EXPECT_NE(R.FailedDescription.find("wrong-eq"), std::string::npos)
        << "incremental=" << Incremental;
    EXPECT_FALSE(R.Counterexample.empty());
    if (Incremental) {
      EXPECT_GE(R.St.PrefixGroups, 1u);
      EXPECT_GE(R.St.ContextReuses, 1u);
      EXPECT_GE(R.St.IncrSatRechecks, 1u);
    } else {
      EXPECT_EQ(R.St.PrefixGroups, 0u);
    }
  }
}

TEST(PipelineTest, ProvedBySimplifyskipsSolver) {
  TermManager TM;
  TermRef X = TM.mkVar("x", TM.intSort());
  std::vector<vcgen::Obligation> Obls = {
      obligation(TM.mkEq(X, TM.mkIntConst(4)),
                 TM.mkLe(X, TM.mkIntConst(4)), "const-fold")};
  Options Opts;
  Result R = solveObligations(TM, Obls, Opts, nullptr);
  EXPECT_EQ(R.V, Verdict::Proved);
  EXPECT_EQ(R.St.ProvedBySimplify, 1u);
  EXPECT_EQ(R.St.Queries, 0u);
}

} // namespace
