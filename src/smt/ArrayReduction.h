//===- smt/ArrayReduction.h - Eager array-theory reduction -----*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Eager reduction of the generalized/combinatory array fragment to EUF:
/// every select over a composite array term (store, const-array, pointwise
/// combinator) is axiomatised over the finite set of relevant index terms,
/// and extensionality witnesses are introduced for array equalities that
/// occur negatively. After reduction the only remaining array reasoning is
/// congruence of `select`, which the EUF engine provides.
///
/// This mirrors how the paper obtains decidability: FWYB verification
/// conditions live in the quantifier-free generalized array theory of
/// de Moura & Bjorner (FMCAD'09), which admits exactly this reduction.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_SMT_ARRAYREDUCTION_H
#define IDS_SMT_ARRAYREDUCTION_H

#include "smt/Term.h"

#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace ids {
namespace smt {

struct ArrayReductionStats {
  unsigned NumIndexTerms = 0;
  unsigned NumArrayTerms = 0;
  unsigned NumLemmas = 0;
  unsigned NumWitnesses = 0;
};

/// Returns \p Formula conjoined with the reduction lemmas. \p Formula must
/// be ite-lifted (no non-boolean ite nodes) and quantifier-free.
///
/// By default instantiation is relevancy-driven: axioms are emitted only
/// for (array, index) pairs demanded by an actual select, closed under
/// structural peeling and equality congruence. \p Eager restores the
/// blind composite-times-every-same-sort-index product — quadratically
/// larger, but it forces the model builder's extensional array values
/// consistent everywhere, which decides a few query shapes the demanded
/// set alone leaves Unknown (the solver escalates to it on demand).
TermRef reduceArrays(TermManager &TM, TermRef Formula,
                     ArrayReductionStats *Stats = nullptr,
                     bool Eager = false);

/// Replaces every non-boolean ite subterm by a fresh constant constrained
/// by `(cond => v = then) && (!cond => v = else)` hoisted to the top level.
TermRef liftItes(TermManager &TM, TermRef Formula);

/// Incremental, level-aware variant of reduceArrays for the assertion-stack
/// SolverContext: the demand closure (selects seed demands; demands peel
/// through store/combinator structure, flow across array-equality atoms and
/// up through the operand closure of equality sides) is maintained
/// persistently across assertFormula calls, so instantiations triggered by
/// the shared prefix are computed once and survive every query solved on
/// top of it. push()/pop() bracket assertion levels: demands, equality
/// edges and emitted-lemma records made above a popped level are retracted,
/// so a later re-assertion re-derives exactly the lemmas it needs.
///
/// Produces the same lemma SET as the one-shot reduceArrays for the same
/// total assertion set (the closure rules are monotone, so incremental
/// evaluation reaches the same fixpoint); only the emission order differs.
/// The one-shot path is kept intact as the `--no-incremental` differential
/// baseline.
class ArrayReducer {
public:
  /// Instantiation strategy.
  ///  - Demand: the relevancy-driven closure, every lemma asserted up
  ///    front (the historical incremental default).
  ///  - Eager: the blind composite-times-index product (escalation
  ///    baseline, `--eager-arrays`).
  ///  - Lazy: the closure still runs (so the demand/equality bookkeeping
  ///    is identical), but only select-rooted instantiations are asserted
  ///    up front; peeled and read-over-equality lemmas are parked in a
  ///    pending pool and activated from inside the CDCL loop on the first
  ///    candidate model that violates them (TheoryEngine).
  enum class Mode { Demand, Eager, Lazy };

  ArrayReducer(TermManager &TM, Mode M) : TM(TM), InstMode(M) {}

  bool lazy() const { return InstMode == Mode::Lazy; }

  /// Ingests an (ite-lifted, quantifier-free) assertion and returns the
  /// reduction lemmas newly required by it, given everything asserted on
  /// the active levels so far. The caller asserts them alongside the
  /// formula at the current level.
  std::vector<TermRef> assertFormula(TermRef F);

  void push();
  void pop();
  unsigned numLevels() const { return static_cast<unsigned>(Levels.size()); }

  const ArrayReductionStats &stats() const { return Stats; }

  /// Lazy mode: the deferred lemmas of all active levels, in emission
  /// order. Entries stay in the pool once activated (activation is a
  /// separate, level-tracked record so a popped activation reverts the
  /// lemma to pending without re-deriving it).
  const std::vector<TermRef> &pendingLemmas() const { return Pending; }
  bool isActivated(TermRef L) const { return Activated.count(L) != 0; }
  /// Marks a pending lemma as asserted into the SAT core at the current
  /// level. Counted in stats().NumLemmas at activation time, mirroring
  /// when an up-front mode would have emitted it.
  void markActivated(TermRef L);

private:
  struct Undo {
    enum Kind : uint8_t {
      KnownTerm,
      IndexTerm,
      ArrayTerm,
      EqAdjPush,
      UpEdgePush,
      UpSetAdd,
      NeedAdd,
      EqAtomAdd,
      ConstEqPush,
      WitnessAdd,
      LemmaAdd,
      PendingAdd,
      ActivatedAdd,
    };
    Kind K;
    TermRef A = nullptr;
    TermRef B = nullptr;
    const Sort *S = nullptr;
  };

  void collectNewSubterms(TermRef T, std::vector<TermRef> &Out);
  void demand(TermRef A, TermRef I, bool Seed = false);
  void markUp(TermRef T);
  void considerEqAtom(TermRef EqT);
  void emitReadOverComposite(TermRef A, TermRef I, bool Defer);
  void emitEqLemma(TermRef EqT, TermRef I);
  void emitLemma(TermRef L, bool Defer = false);
  void processWork();
  bool eager() const { return InstMode == Mode::Eager; }

  TermManager &TM;
  const Mode InstMode;
  ArrayReductionStats Stats;

  std::unordered_set<TermRef> KnownTerms;
  std::set<std::pair<const Sort *, TermRef>> IndexSeen;
  std::map<const Sort *, std::vector<TermRef>> IndexTermsBySort;
  std::map<const Sort *, std::vector<TermRef>> ArrayTermsBySort; // Eager
  std::unordered_map<TermRef, std::vector<TermRef>> EqAdj;
  std::unordered_map<TermRef, std::vector<TermRef>> UpEdges;
  std::unordered_set<TermRef> UpSet;
  std::set<std::pair<TermRef, TermRef>> Need;
  std::unordered_map<TermRef, std::vector<TermRef>> DemandedIndices;
  std::unordered_set<TermRef> EqAtoms;
  /// Const-array equality atoms indexed by their non-constant side: a new
  /// demand on that side must emit the read-over-equality lemma late.
  std::unordered_map<TermRef, std::vector<TermRef>> ConstEqIndex;
  std::unordered_set<TermRef> WitnessedNegEqs;
  /// Everything ever emitted on an active level, asserted OR pending
  /// (dedup across both pools).
  std::unordered_set<TermRef> EmittedLemmas;
  /// Lazy mode: deferred lemmas awaiting an in-search violation.
  std::vector<TermRef> Pending;
  std::unordered_set<TermRef> Activated;

  struct WorkItem {
    TermRef A;
    TermRef I;
    bool Seed;
  };
  std::vector<WorkItem> Work; // demand worklist
  std::vector<TermRef> NewLemmas; // collected during the current assert

  std::vector<Undo> Trail;
  std::vector<size_t> Levels;
};

} // namespace smt
} // namespace ids

#endif // IDS_SMT_ARRAYREDUCTION_H
