//===- driver/Serve.h - verification-as-a-service loop ---------*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `ids-verify serve`: a long-lived daemon answering line-delimited JSON
/// verify requests on stdin with one JSON response line each on stdout.
/// The warm state (query cache, procedure-verdict cache, optionally
/// disk-backed via --cache-dir) lives in one VerifierInstance across all
/// requests. Requests are isolated: a malformed request, a front-end
/// rejection or an internal error produces an `{"ok":false,...}` response
/// and the loop continues.
///
/// Request object (exactly one source selector required):
///   {"source": "<ids text>"}   verify inline module text
///   {"path": "<file.ids>"}     verify a file
///   {"benchmark": "<name>"}    verify an embedded benchmark
/// Optional fields (overriding the serve command line's defaults):
///   "id": any value, echoed back verbatim for request correlation
///   "proc": string             verify only this procedure
///   "budget": integer          per-query theory-check budget
///   "timeout": seconds         per-query wall-clock budget
///   "request_timeout": seconds whole-request wall-clock budget
///   "quant": bool, "frames": bool, "impacts": bool, "reverify": bool
///     (reverify=true forces re-solving even on verdict-cache hits)
///
/// Response: {"id":...,"ok":true,"structure":...,"lc_size":N,
///   "all_verified":bool,"impacts":[{"field":..,"group":..,"ok":..,
///   "cached":..,"timed_out":..}],"procs":[{"name":..,"status":
///   "verified"|"failed"|"unknown","cached":..,"seconds":..,
///   "obligations":N,"failed_obligation":..,"counterexample":..}]}
/// or {"id":...,"ok":false,"error":"..."}.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_DRIVER_SERVE_H
#define IDS_DRIVER_SERVE_H

#include "driver/Cli.h"

#include <iosfwd>

namespace ids {
namespace driver {

/// Runs the serve loop reading \p In line by line and writing one
/// response line per request to \p Out (flushed after every response).
/// \p Base carries the command-line defaults (budget, timeouts, cache
/// dir already attached by the caller's instance setup). Returns the
/// process exit code (0 on orderly stdin EOF).
int runServe(const CliArgs &Base, std::istream &In, std::ostream &Out);

} // namespace driver
} // namespace ids

#endif // IDS_DRIVER_SERVE_H
