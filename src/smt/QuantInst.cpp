//===- smt/QuantInst.cpp - Ground quantifier instantiation ----------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "smt/QuantInst.h"

#include <map>
#include <unordered_set>

using namespace ids;
using namespace ids::smt;

namespace {
/// Collects ground subterms (terms not containing any registered bound
/// variable) grouped by sort.
class GroundTerms {
public:
  GroundTerms(const std::unordered_set<TermRef> &BoundVars)
      : BoundVars(BoundVars) {}

  void collect(TermRef T) {
    if (!Visited.insert(T).second)
      return;
    bool HasBound = BoundVars.count(T) != 0;
    for (TermRef A : T->getArgs()) {
      collect(A);
      HasBound |= NonGround.count(A) != 0;
    }
    if (HasBound) {
      NonGround.insert(T);
      return;
    }
    BySort[T->getSort()].push_back(T);
  }

  const std::vector<TermRef> &forSort(const Sort *S) {
    return BySort[S];
  }

private:
  const std::unordered_set<TermRef> &BoundVars;
  std::unordered_set<TermRef> Visited, NonGround;
  std::map<const Sort *, std::vector<TermRef>> BySort;
};

/// One instantiation pass: polarity-directed rewrite of Forall nodes.
class InstPass {
public:
  InstPass(TermManager &TM, GroundTerms &Ground, unsigned MaxInst,
           QuantInstResult &Result)
      : TM(TM), Ground(Ground), MaxInst(MaxInst), Result(Result) {}

  TermRef visit(TermRef T, bool Positive) {
    auto Key = std::make_pair(T, Positive);
    auto It = Cache.find(Key);
    if (It != Cache.end())
      return It->second;
    TermRef R = compute(T, Positive);
    Cache.emplace(Key, R);
    return R;
  }

private:
  TermRef compute(TermRef T, bool Positive) {
    switch (T->getKind()) {
    case TermKind::Not:
      return TM.mkNot(visit(T->getArg(0), !Positive));
    case TermKind::And:
    case TermKind::Or: {
      std::vector<TermRef> Args;
      Args.reserve(T->getNumArgs());
      for (TermRef A : T->getArgs())
        Args.push_back(visit(A, Positive));
      return T->getKind() == TermKind::And ? TM.mkAnd(std::move(Args))
                                           : TM.mkOr(std::move(Args));
    }
    case TermKind::Ite:
      if (T->getSort()->isBool() && quantified(T)) {
        // cond appears in both polarities; rewrite as implications.
        TermRef C = T->getArg(0);
        return visit(TM.mkAnd(TM.mkImplies(C, T->getArg(1)),
                              TM.mkImplies(TM.mkNot(C), T->getArg(2))),
                     Positive);
      }
      return T;
    case TermKind::Eq:
      if (T->getArg(0)->getSort()->isBool() && quantified(T)) {
        TermRef A = T->getArg(0), B = T->getArg(1);
        return visit(TM.mkAnd(TM.mkImplies(A, B), TM.mkImplies(B, A)),
                     Positive);
      }
      return T;
    case TermKind::Forall: {
      if (!Positive) {
        // Existential after negation: skolemise.
        std::unordered_map<TermRef, TermRef> SkolemMap;
        for (TermRef BV : T->getBoundVars())
          SkolemMap[BV] = TM.mkFreshVar("sk", BV->getSort());
        return visit(TM.substitute(T->getArg(0), SkolemMap), Positive);
      }
      // Universal: instantiate over ground terms of matching sorts.
      const std::vector<TermRef> &BVs = T->getBoundVars();
      std::vector<const std::vector<TermRef> *> Domains;
      size_t Total = 1;
      for (TermRef BV : BVs) {
        const std::vector<TermRef> &D = Ground.forSort(BV->getSort());
        if (D.empty()) {
          Result.Complete = false;
          return TM.mkTrue();
        }
        Domains.push_back(&D);
        Total *= D.size();
      }
      Result.Complete = false; // enumerative instantiation is heuristic
      std::vector<TermRef> Instances;
      std::vector<size_t> Cursor(BVs.size(), 0);
      size_t Count = 0;
      for (;;) {
        if (Count >= MaxInst)
          break;
        std::unordered_map<TermRef, TermRef> Map;
        for (size_t I = 0; I < BVs.size(); ++I)
          Map[BVs[I]] = (*Domains[I])[Cursor[I]];
        Instances.push_back(visit(TM.substitute(T->getArg(0), Map), true));
        ++Count;
        ++Result.NumInstantiations;
        // Advance the tuple cursor.
        size_t D = 0;
        while (D < Cursor.size()) {
          if (++Cursor[D] < Domains[D]->size())
            break;
          Cursor[D] = 0;
          ++D;
        }
        if (D == Cursor.size())
          break;
      }
      (void)Total;
      return TM.mkAnd(std::move(Instances));
    }
    default:
      return T;
    }
  }

  bool quantified(TermRef T) { return TM.containsQuantifier(T); }

  TermManager &TM;
  GroundTerms &Ground;
  unsigned MaxInst;
  QuantInstResult &Result;
  std::map<std::pair<TermRef, bool>, TermRef> Cache;
};
} // namespace

QuantInstResult smt::instantiateQuantifiers(TermManager &TM, TermRef Formula,
                                            unsigned Rounds,
                                            unsigned MaxInstPerQuant) {
  QuantInstResult Result;
  Result.Formula = Formula;
  if (!TM.containsQuantifier(Formula))
    return Result;

  TermRef Current = Formula;
  for (unsigned R = 0; R < Rounds && TM.containsQuantifier(Current); ++R) {
    // Bound variables of every quantifier in the current formula.
    std::unordered_set<TermRef> BoundVars;
    {
      std::unordered_set<TermRef> Seen;
      std::vector<TermRef> Work = {Current};
      while (!Work.empty()) {
        TermRef T = Work.back();
        Work.pop_back();
        if (!Seen.insert(T).second)
          continue;
        if (T->getKind() == TermKind::Forall)
          for (TermRef BV : T->getBoundVars())
            BoundVars.insert(BV);
        for (TermRef A : T->getArgs())
          Work.push_back(A);
      }
    }
    GroundTerms Ground(BoundVars);
    Ground.collect(Current);
    InstPass Pass(TM, Ground, MaxInstPerQuant, Result);
    Current = Pass.visit(Current, true);
  }
  // Any quantifier still left (nested under uninstantiated structure) is
  // approximated away; drop by replacing with true in positive positions.
  if (TM.containsQuantifier(Current)) {
    Result.Complete = false;
    std::unordered_set<TermRef> BoundVars;
    GroundTerms Ground(BoundVars);
    Ground.collect(Current);
    InstPass Pass(TM, Ground, 0, Result);
    Current = Pass.visit(Current, true);
  }
  Result.Formula = Current;
  return Result;
}
