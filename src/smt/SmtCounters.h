//===- smt/SmtCounters.h - Cached smt.* metric cells -----------*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The smt.* registry cells, resolved once per process and shared by
/// both checkSat paths (one-shot Solver and incremental SolverContext).
/// Callers record per-check *deltas* — SatSolver and SolverStats
/// counters are cumulative per context, so each check subtracts its
/// starting window before bumping the global cells.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_SMT_SMTCOUNTERS_H
#define IDS_SMT_SMTCOUNTERS_H

#include "support/Trace.h"

namespace ids {
namespace smt {

struct SmtCounters {
  trace::Counter &CheckSats = trace::counter("smt.check_sats");
  trace::Counter &Decisions = trace::counter("smt.decisions");
  trace::Counter &Conflicts = trace::counter("smt.conflicts");
  trace::Counter &TheoryConflicts = trace::counter("smt.theory_conflicts");
  trace::Counter &TheoryChecks = trace::counter("smt.theory_checks");
  trace::Counter &Propagations = trace::counter("smt.propagations");
  trace::Counter &ModelRepairs = trace::counter("smt.model_repairs");
  trace::Counter &ModelGiveUps = trace::counter("smt.model_give_ups");
  trace::Counter &Instantiations = trace::counter("smt.instantiations");
  trace::Counter &ArrayLemmas = trace::counter("smt.array_lemmas");
  trace::Counter &AssertsReused = trace::counter("smt.theory_asserts_reused");
  trace::Counter &LemmasRetained = trace::counter("smt.lemmas_retained");
  trace::Counter &MaxAtoms = trace::counter("smt.max_atoms");
  trace::Counter &LemmasDeleted = trace::counter("smt.lemmas_deleted");
  trace::Counter &ReduceDbSweeps = trace::counter("smt.reduce_db_sweeps");
  trace::Counter &LazyInstantiations =
      trace::counter("smt.lazy_instantiations");
  trace::Counter &Restarts = trace::counter("smt.restarts");
  trace::Counter &TheoryPropagations =
      trace::counter("smt.theory_propagations");
  trace::Counter &PropagationConflicts =
      trace::counter("smt.propagation_conflicts");
  trace::Counter &CcRegistrationsReused =
      trace::counter("smt.cc_registrations_reused");
};

inline SmtCounters &smtCounters() {
  static SmtCounters C;
  return C;
}

} // namespace smt
} // namespace ids

#endif // IDS_SMT_SMTCOUNTERS_H
